//! The paper's worked examples, executed end-to-end: Examples 3, 4,
//! 5/6, 7, 9 and 10, plus the §2 query-scoping examples and the §3.1
//! views 3.3/3.4.

use gsview::gsdb::{self, database, samples, Oid, Store, Update};
use gsview::query::{evaluate, parse_query, parse_viewdef, CmpOp, Pred};
use gsview::views::{
    recompute::recompute, virtualview, LocalBase, Maintainer, SimpleViewDef,
};

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

fn person_store() -> Store {
    let mut s = Store::new();
    samples::person_db(&mut s).unwrap();
    s
}

/// §2: the sample query and both scope clauses.
#[test]
fn section_2_query_scoping() {
    let mut store = person_store();
    // SELECT ROOT.professor X WHERE X.age > 40 → {P1}.
    let q = parse_query("SELECT ROOT.professor X WHERE X.age > 40").unwrap();
    assert_eq!(evaluate(&store, &q).unwrap().oids, vec![oid("P1")]);

    // "say that all objects are in database D1 except for A1" —
    // WITHIN D1 → empty; ANS INT D1 → {P1}.
    let members: Vec<Oid> = database::members(&store, oid("PERSON"))
        .unwrap()
        .into_iter()
        .filter(|&o| o != oid("A1"))
        .collect();
    database::database_of(&mut store, oid("D1"), &members).unwrap();
    let q_within = parse_query("SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1").unwrap();
    assert!(evaluate(&store, &q_within).unwrap().is_empty());
    let q_int = parse_query("SELECT ROOT.professor X WHERE X.age > 40 ANS INT D1").unwrap();
    assert_eq!(evaluate(&store, &q_int).unwrap().oids, vec![oid("P1")]);

    // "if all nodes except P1 are in D1, the same query will return an
    // empty set."
    let members2: Vec<Oid> = database::members(&store, oid("PERSON"))
        .unwrap()
        .into_iter()
        .filter(|&o| o != oid("P1"))
        .collect();
    database::database_of(&mut store, oid("D2"), &members2).unwrap();
    let q_int2 = parse_query("SELECT ROOT.professor X WHERE X.age > 40 ANS INT D2").unwrap();
    assert!(evaluate(&store, &q_int2).unwrap().is_empty());
}

/// Example 3: view VJ and its uses (query 3.3, starting points).
#[test]
fn example_3_view_vj() {
    let mut store = person_store();
    let vj = parse_viewdef(
        "define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
    )
    .unwrap();
    virtualview::define_virtual_view(&mut store, &vj).unwrap();
    // value(VJ) = {P1, P3}.
    assert_eq!(store.get(oid("VJ")).unwrap().children(), &[oid("P1"), oid("P3")]);

    // Query 3.3: SELECT ROOT.professor X ANS INT VJ → {P1}.
    let q = parse_query("SELECT ROOT.professor X ANS INT VJ").unwrap();
    assert_eq!(evaluate(&store, &q).unwrap().oids, vec![oid("P1")]);

    // "SELECT VJ.?.age gives us all subobjects of objects in view VJ
    // with label age."
    let q = parse_query("SELECT VJ.?.age X").unwrap();
    assert_eq!(
        evaluate(&store, &q).unwrap().oids,
        vec![oid("A1"), oid("A3")]
    );
}

/// Expressions 3.4: the PROF/STUDENT view hierarchy.
#[test]
fn expressions_3_4_views_on_views() {
    let mut store = person_store();
    let prof = parse_viewdef("define view PROF as: SELECT ROOT.*.professor X").unwrap();
    virtualview::define_virtual_view(&mut store, &prof).unwrap();
    let student = parse_viewdef("define view STUDENT as: SELECT PROF.?.student X").unwrap();
    virtualview::define_virtual_view(&mut store, &student).unwrap();
    assert_eq!(
        store.get(oid("PROF")).unwrap().children(),
        &[oid("P1"), oid("P2")]
    );
    // "A student who is not a subobject of some professor would not be
    // included in STUDENT."
    assert_eq!(store.get(oid("STUDENT")).unwrap().children(), &[oid("P3")]);
    // Queries can start from the new hierarchy.
    let q = parse_query("SELECT STUDENT.?.major X").unwrap();
    assert_eq!(evaluate(&store, &q).unwrap().oids, vec![oid("M3")]);
}

/// Example 4: the mview keyword produces a materialized copy whose
/// queries agree with the virtual view.
#[test]
fn example_4_materialization_transparency() {
    use gsview::query::PathExpr;
    use gsview::views::{GeneralMaintainer, GeneralViewDef};

    let store = person_store();
    let def = GeneralViewDef::new("MVJ", "ROOT", PathExpr::parse("*").unwrap()).with_cond(
        PathExpr::parse("name").unwrap(),
        Pred::new(CmpOp::Eq, "John"),
    );
    let mv = GeneralMaintainer::new(def.clone()).recompute(&store).unwrap();
    // "Whether a view is materialized or not should not affect query
    // results": members equal the virtual evaluation.
    let virt = evaluate(&store, &def.to_query()).unwrap();
    assert_eq!(mv.members_base(), virt.oids);
    // Delegates contain base OIDs (N1 is "an OID of an object in
    // database PERSON").
    let p1d = mv.delegate(oid("MVJ.P1")).unwrap();
    assert!(p1d.children().contains(&oid("N1")));
}

/// Examples 5 & 6: the YP maintenance walkthrough, step by step.
#[test]
fn examples_5_and_6_yp_maintenance() {
    let mut store = person_store();
    let def = SimpleViewDef::new("YP", "ROOT", "professor")
        .with_cond("age", Pred::new(CmpOp::Le, 45i64));
    let m = Maintainer::new(def.clone());
    let mut yp = recompute(&def, &mut LocalBase::new(&store)).unwrap();
    assert_eq!(yp.members_base(), vec![oid("P1")]);

    // Example 6 first part: insert(P2, A2), <A2, age, 40>.
    store.create(gsdb::Object::atom("A2", "age", 40i64)).unwrap();
    let up = store.insert_edge(oid("P2"), oid("A2")).unwrap();
    let out = m.apply(&mut yp, &mut LocalBase::new(&store), &up).unwrap();
    // Step 3: S = eval(A2, ∅, cond) = {A2} because value(A2) = 40 < 45.
    // Step 4: V_insert(YP, YP.P2).
    assert_eq!(out.inserted, vec![oid("P2")]);

    // Example 6 second part: delete(ROOT, P1).
    let up = store.delete_edge(oid("ROOT"), oid("P1")).unwrap();
    let out = m.apply(&mut yp, &mut LocalBase::new(&store), &up).unwrap();
    // Step 2: S = eval(P1, age, cond) = {A1}; step 3: p = cond_path →
    // V_delete(YP, YP.P1).
    assert_eq!(out.deleted, vec![oid("P1")]);
    assert_eq!(yp.members_base(), vec![oid("P2")]);
}

/// Example 7: tuple insertion maintains SEL with a handful of
/// accesses, and inserts into the other relation are screened out.
#[test]
fn example_7_relations_maintenance() {
    let mut store = Store::counting();
    samples::relations_db(&mut store, 50, 50).unwrap();
    let def = SimpleViewDef::new("SEL", "REL", "r.tuple")
        .with_cond("age", Pred::new(CmpOp::Gt, 30i64));
    let m = Maintainer::new(def.clone());
    let mut sel = recompute(&def, &mut LocalBase::new(&store)).unwrap();
    let baseline = sel.len();

    // New tuple T with <A, age, 40> into R.
    store.create(gsdb::Object::atom("A", "age", 40i64)).unwrap();
    store
        .create(gsdb::Object::set("T", "tuple", &[oid("A")]))
        .unwrap();
    store.reset_accesses();
    let up = store.insert_edge(oid("R"), oid("T")).unwrap();
    let out = m.apply(&mut sel, &mut LocalBase::new(&store), &up).unwrap();
    assert_eq!(out.inserted, vec![oid("T")]);
    assert_eq!(sel.len(), baseline + 1);
    let incremental_cost = store.accesses();
    // "Since the base tree is very shallow, computing these functions
    // should not be expensive" — far below touching all 50+50 tuples.
    assert!(
        incremental_cost < 30,
        "expected a handful of accesses, got {incremental_cost}"
    );

    // "inserting a tuple T2 into relation s ... the incremental
    // maintenance algorithm will stop processing after it finds out
    // that path(REL, S) does not match."
    store.create(gsdb::Object::atom("Bnew2", "age", 50i64)).unwrap();
    store
        .create(gsdb::Object::set("Tnew2", "tuple", &[oid("Bnew2")]))
        .unwrap();
    store.reset_accesses();
    let up = store.insert_edge(oid("S"), oid("Tnew2")).unwrap();
    let out = m.apply(&mut sel, &mut LocalBase::new(&store), &up).unwrap();
    assert!(!out.relevant);
    assert!(store.accesses() < 10, "screening must be near-constant");
}

/// Example 9: realizing eval via a fetch-objects + local-test protocol.
#[test]
fn example_9_source_query_realization() {
    use gsview::warehouse::{CostMeter, ReportLevel, Source, SourceQuery, SourceReply};
    use std::sync::Arc;

    let src = Source::empty("s", oid("ROOT"), ReportLevel::OidsOnly);
    src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
    let meter = Arc::new(CostMeter::new());
    let w = src.wrapper(meter);
    // ancestor(Y, p) as "fetch X where path(X, Y) = p":
    let reply = w.serve(&SourceQuery::Ancestor {
        n: oid("A1"),
        p: gsdb::Path::parse("age"),
    });
    assert_eq!(reply, SourceReply::AncestorResult(Some(oid("P1"))));
    // eval(N, p, cond) as "fetch all objects in N.p, then test cond
    // locally":
    let reply = w.serve(&SourceQuery::Reach {
        n: oid("P1"),
        p: gsdb::Path::parse("age"),
    });
    let SourceReply::Objects(infos) = reply else {
        panic!("expected objects");
    };
    let pred = Pred::new(CmpOp::Le, 45i64);
    let passing: Vec<Oid> = infos
        .iter()
        .filter(|i| i.value.as_atom().map(|a| pred.eval(a)).unwrap_or(false))
        .map(|i| i.oid)
        .collect();
    assert_eq!(passing, vec![oid("A1")]);
}

/// Example 10: with the auxiliary cache, "view maintenance
/// corresponding to any base update can be done locally at the
/// warehouse".
#[test]
fn example_10_cached_local_maintenance() {
    use gsview::warehouse::{ReportLevel, Source, ViewOptions, Warehouse};

    let src = Source::empty("persons", oid("ROOT"), ReportLevel::WithValues);
    src.with_store(|s| samples::person_db(s).map(|_| ())).unwrap();
    src.with_store(|s| {
        s.drain_log();
    });
    let mut wh = Warehouse::new();
    wh.connect(&src);
    wh.add_view(
        "persons",
        SimpleViewDef::new("YP", "ROOT", "professor")
            .with_cond("age", Pred::new(CmpOp::Le, 45i64)),
        ViewOptions {
            use_aux_cache: true,
            label_screening: true,
            ..ViewOptions::default()
        },
    )
    .unwrap();
    wh.meter("persons").unwrap().reset();

    // A volley of updates of all three kinds.
    src.apply(Update::modify("A1", 70i64)).unwrap();
    src.apply(Update::modify("A1", 30i64)).unwrap();
    src.apply(Update::delete("P1", "A1")).unwrap();
    src.apply(Update::insert("P1", "A1")).unwrap();
    src.apply(Update::modify("N1", "Jon")).unwrap(); // irrelevant
    for report in src.monitor().poll() {
        wh.handle_report(&report).unwrap();
    }
    assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    assert_eq!(
        wh.meter("persons").unwrap().queries(),
        0,
        "Example 10: fully local maintenance"
    );
}
