//! End-to-end smoke for the `gsview-top` console binary: spawn a
//! telemetry-enabled server, run the real binary in bounded
//! (`--ticks`) mode against it, and check both the rendered console
//! and the JSON-lines sink.

use gsview::obs::telemetry::TailSampler;
use gsview::serve::{ServeConfig, Server, SourceService, TelemetryHub};
use gsview::warehouse::{CostMeter, ReportLevel, Source};
use gsview::gsdb::{samples, Oid, Update};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn gsview_top_renders_live_batches_and_writes_jsonl() {
    let src = Source::empty("persons", Oid::new("ROOT"), ReportLevel::WithValues);
    src.with_store(|s| samples::person_db(s).map(|_| ()))
        .unwrap();
    src.with_store(|s| {
        s.drain_log();
    });
    let svc = Arc::new(SourceService::new(src.clone(), Arc::new(CostMeter::new())));
    let hub = Arc::new(TelemetryHub::new("top-smoke", 256, TailSampler::keep_all()));
    let _g = gsview::obs::install(hub.exporter());
    let server = Server::spawn_with_telemetry(svc, ServeConfig::default(), hub).unwrap();

    // Background write load so batches are never empty.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let src = src.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Acquire) {
                src.apply(Update::modify("A1", 30 + (i % 40))).unwrap();
                i += 1;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };

    let dir = std::env::temp_dir().join(format!("gsview-top-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("batches.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_gsview-top"))
        .arg(server.addr().to_string())
        .args(["--ticks", "3", "--no-clear"])
        .args(["--jsonl", jsonl.to_str().unwrap()])
        .output()
        .expect("spawn gsview-top");
    stop.store(true, Ordering::Release);
    writer.join().unwrap();

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "gsview-top failed: {}\n{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("gsview-top — top-smoke"), "{stdout}");
    // Store health polled over Request::Stats on a second connection.
    assert!(stdout.contains("store   epoch"), "{stdout}");
    assert!(stdout.contains("shards  ["), "{stdout}");

    let sink = std::fs::read_to_string(&jsonl).unwrap();
    let lines: Vec<&str> = sink.lines().collect();
    assert_eq!(lines.len(), 3, "one JSON line per batch:\n{sink}");
    for line in lines {
        assert!(line.starts_with("{\"seq\":"), "{line}");
        assert!(line.contains("\"service\":\"top-smoke\""), "{line}");
        assert!(line.ends_with("]}"), "{line}");
    }
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}
