//! End-to-end warehouse scenarios (paper §5): multiple autonomous
//! sources, concurrent monitor pumping through the channel integrator,
//! view correctness under sustained churn, and the cost hierarchy of
//! the query-reduction techniques.

use gsview::gsdb::{samples, Oid, StoreConfig, Update};
use gsview::query::{CmpOp, Pred};
use gsview::views::{recompute, LocalBase, SimpleViewDef};
use gsview::warehouse::{
    spawn_channel_integrator, ReportLevel, Source, ViewOptions, Warehouse,
};
use gsview::workload::{relations, relations_churn, ChurnSpec, RelationsSpec};

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

fn rel_source(name: &str, level: ReportLevel, seed: u64) -> (Source, gsview::workload::RelationsDb) {
    let (store, db) = relations::generate(
        RelationsSpec {
            relations: 2,
            tuples_per_relation: 60,
            extra_fields: 1,
            age_range: 60,
            seed,
        },
        StoreConfig {
            parent_index: true,
            label_index: true,
            log_updates: true,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    (Source::new(name, oid("REL"), store, level), db)
}

#[test]
fn two_sources_one_warehouse() {
    let person = Source::empty("people", oid("ROOT"), ReportLevel::WithValues);
    person
        .with_store(|s| samples::person_db(s).map(|_| ()))
        .unwrap();
    person.with_store(|s| {
        s.drain_log();
    });
    let (rels, _) = rel_source("rels", ReportLevel::WithValues, 91);

    let mut wh = Warehouse::new();
    wh.connect(&person);
    wh.connect(&rels);
    wh.add_view(
        "people",
        SimpleViewDef::new("YP", "ROOT", "professor")
            .with_cond("age", Pred::new(CmpOp::Le, 45i64)),
        ViewOptions::default(),
    )
    .unwrap();
    wh.add_view(
        "rels",
        SimpleViewDef::new("SEL", "REL", "r0.tuple")
            .with_cond("age", Pred::new(CmpOp::Gt, 30i64)),
        ViewOptions::default(),
    )
    .unwrap();

    // Interleaved updates at both sources.
    person.apply(Update::modify("A1", 80i64)).unwrap();
    rels.apply(Update::modify("t0.age", 55i64)).unwrap();
    person.apply(Update::modify("A1", 30i64)).unwrap();
    for r in person.monitor().poll() {
        wh.handle_report(&r).unwrap();
    }
    for r in rels.monitor().poll() {
        wh.handle_report(&r).unwrap();
    }
    assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    assert!(wh.view(oid("SEL")).unwrap().contains_base(oid("t0")));
    // Reports to an unknown source are ignored, not fatal.
    let stray = gsview::warehouse::UpdateReport {
        source: "nobody".into(),
        seq: 0,
        update: gsview::gsdb::AppliedUpdate::Create { oid: oid("zzz") },
        info: vec![],
        paths: vec![],
    };
    assert!(wh.handle_report(&stray).unwrap().is_empty());
}

#[test]
fn channel_integrator_feeds_warehouse_across_threads() {
    let (src, mut db) = rel_source("crels", ReportLevel::WithValues, 92);
    let script = relations_churn(
        &mut db,
        ChurnSpec {
            ops: 150,
            modify_weight: 2,
            field_modify_weight: 0,
            insert_weight: 1,
            delete_weight: 1,
            target_bias: 0.7,
            age_range: 60,
            seed: 93,
        },
    );
    let def = SimpleViewDef::new("CSEL", "REL", "r0.tuple")
        .with_cond("age", Pred::new(CmpOp::Gt, 30i64));
    let mut wh = Warehouse::new();
    wh.connect(&src);
    wh.add_view("crels", def.clone(), ViewOptions::default())
        .unwrap();

    // Apply the whole script at the source, then pump reports through
    // the threaded integrator until all are delivered.
    for op in &script {
        src.with_store(|s| op.replay(s)).unwrap();
    }
    let (rx, handles) = spawn_channel_integrator(vec![src.monitor()], 5);
    let mut reports: Vec<_> = rx.iter().collect();
    for h in handles {
        h.join().unwrap();
    }
    // Per-source order is already guaranteed; feed in sequence order.
    reports.sort_by_key(|r| r.seq);
    let n_updates = script
        .iter()
        .filter(|op| matches!(op, gsview::workload::ScriptOp::Apply(_)))
        .count();
    assert!(reports.len() >= n_updates, "all updates must be reported");
    for r in &reports {
        wh.handle_report(r).unwrap();
    }
    // Batch delivery processes stale reports against a source that has
    // already moved on — the §5.1 anomaly (citing ZGMHW95). The view
    // may therefore drift; a warehouse-side refresh reconciles it.
    wh.refresh_view(oid("CSEL")).unwrap();
    let expected = src.with_store(|s| {
        recompute::recompute_members(&def, &mut LocalBase::new(s))
    });
    assert_eq!(wh.view(oid("CSEL")).unwrap().members_base(), expected);
}

#[test]
fn technique_stack_reduces_queries_monotonically() {
    // L1 bare > L2 bare > L2+screening > L2+screening+cache, on the
    // same stream.
    let mut results = Vec::new();
    for (level, screening, cache) in [
        (ReportLevel::OidsOnly, false, false),
        (ReportLevel::WithValues, false, false),
        (ReportLevel::WithValues, true, false),
        (ReportLevel::WithValues, true, true),
    ] {
        let (src, mut db) = rel_source("srels", level, 94);
        let script = relations_churn(
            &mut db,
            ChurnSpec {
                ops: 120,
                modify_weight: 3,
                field_modify_weight: 0,
                insert_weight: 1,
                delete_weight: 1,
                target_bias: 0.5,
                age_range: 60,
                seed: 95,
            },
        );
        let mut wh = Warehouse::new();
        wh.connect(&src);
        wh.add_view(
            "srels",
            SimpleViewDef::new("SSEL", "REL", "r0.tuple")
                .with_cond("age", Pred::new(CmpOp::Gt, 30i64)),
            ViewOptions {
                use_aux_cache: cache,
                label_screening: screening,
                ..ViewOptions::default()
            },
        )
        .unwrap();
        wh.meter("srels").unwrap().reset();
        for op in &script {
            src.with_store(|s| op.replay(s)).unwrap();
            for r in src.monitor().poll() {
                wh.handle_report(&r).unwrap();
            }
        }
        results.push(wh.meter("srels").unwrap().queries());
    }
    assert!(
        results.windows(2).all(|w| w[0] >= w[1]),
        "each technique must not increase queries: {results:?}"
    );
    assert!(
        results[0] > results[3],
        "the full stack must actually help: {results:?}"
    );
}

#[test]
fn warehouse_stats_account_for_every_report() {
    let (src, mut db) = rel_source("trels", ReportLevel::WithValues, 96);
    let script = relations_churn(
        &mut db,
        ChurnSpec {
            ops: 60,
            modify_weight: 1,
            field_modify_weight: 0,
            insert_weight: 1,
            delete_weight: 1,
            target_bias: 0.3,
            age_range: 60,
            seed: 97,
        },
    );
    let mut wh = Warehouse::new();
    wh.connect(&src);
    wh.add_view(
        "trels",
        SimpleViewDef::new("TSEL", "REL", "r0.tuple")
            .with_cond("age", Pred::new(CmpOp::Gt, 30i64)),
        ViewOptions {
            label_screening: true,
            ..ViewOptions::default()
        },
    )
    .unwrap();
    let mut delivered = 0u64;
    for op in &script {
        src.with_store(|s| op.replay(s)).unwrap();
        for r in src.monitor().poll() {
            delivered += 1;
            wh.handle_report(&r).unwrap();
        }
    }
    let stats = wh.view_stats(oid("TSEL")).unwrap();
    assert_eq!(stats.reports, delivered);
    assert!(stats.screened_out > 0, "creates and field mods screen out");
    assert!(stats.relevant > 0);
    assert!(stats.relevant + stats.screened_out <= stats.reports);
    assert!(stats.inserted > 0 || stats.deleted > 0);
}
