//! Warm restart end-to-end (durability tentpole): a source persists
//! every published epoch through the durable epoch log; after a crash
//! the source reopens from its last durable root and the warehouse
//! re-materializes views from recovered chunks — **zero queries back
//! to the source** — then ordinary incremental maintenance resumes.
//!
//! The crash sweep reruns the same workload killing the media at every
//! write/sync point in turn and checks each recovery against the
//! prefix-commit oracle [`check_crash_recovery`].

use gsview::durable::{
    ChaosController, ChaosPolicy, ChunkPort, CrashPlan, DurableStore, MediaSet,
};
use gsview::gsdb::{samples, Oid, Update};
use gsview::query::{CmpOp, Pred};
use gsview::views::{check_crash_recovery, SimpleViewDef};
use gsview::warehouse::{ReportLevel, Source, ViewOptions, Warehouse};
use std::sync::Arc;

fn oid(s: &str) -> Oid {
    Oid::new(s)
}

/// The standard person database as an update-logging source.
fn person_source() -> Source {
    let src = Source::empty("persons", oid("ROOT"), ReportLevel::WithValues);
    src.with_store(|s| samples::person_db(s).map(|_| ()))
        .unwrap();
    src.with_store(|s| {
        s.drain_log();
    });
    src
}

fn yp_def() -> SimpleViewDef {
    SimpleViewDef::new("YP", "ROOT", "professor").with_cond("age", Pred::new(CmpOp::Le, 45i64))
}

fn pump(src: &Source, wh: &mut Warehouse) {
    for r in src.monitor().poll() {
        wh.handle_report(&r).unwrap();
    }
}

#[test]
fn warm_restart_skips_source_requery() {
    let durable = Arc::new(DurableStore::open(MediaSet::memory()).unwrap());
    let src = person_source();
    src.attach_durable(Arc::clone(&durable)).unwrap();

    // Cold materialization pays queries against the source.
    let mut wh = Warehouse::new();
    wh.connect(&src);
    wh.add_view("persons", yp_def(), ViewOptions::default())
        .unwrap();
    let cold_queries = wh.meter("persons").unwrap().queries();
    assert!(cold_queries > 0, "cold add_view must query the source");
    src.apply(Update::modify("A1", 80i64)).unwrap();
    pump(&src, &mut wh);
    assert!(wh.view(oid("YP")).unwrap().is_empty());

    // Crash: both processes go away; only the durable media survives.
    drop(wh);
    drop(src);

    let src = Source::recover("persons", oid("ROOT"), ReportLevel::WithValues, &durable)
        .unwrap()
        .expect("published epochs must be recoverable");
    let mut wh = Warehouse::new();
    wh.connect(&src);
    wh.attach_durable(Arc::clone(&durable) as Arc<dyn ChunkPort>);
    let view = wh
        .add_view_warm("persons", yp_def(), ViewOptions::default())
        .unwrap()
        .expect("durable state present: warm path must engage");
    assert_eq!(view, oid("YP"));
    assert_eq!(
        wh.meter("persons").unwrap().queries(),
        0,
        "warm restart must not re-query the source"
    );
    // A1 was 80 at the crash; the recovered view already reflects it.
    assert!(wh.view(oid("YP")).unwrap().is_empty());

    // Incremental maintenance continues seamlessly after the restart:
    // sequence numbers resume at the persisted watermark, so the first
    // post-restart report is consumed rather than flagged as a gap.
    src.apply(Update::modify("A1", 30i64)).unwrap();
    pump(&src, &mut wh);
    assert_eq!(wh.view(oid("YP")).unwrap().members_base(), vec![oid("P1")]);
    assert!(wh.stale_views().is_empty());
}

#[test]
fn warm_restart_with_aux_cache_stays_query_free() {
    let durable = Arc::new(DurableStore::open(MediaSet::memory()).unwrap());
    let src = person_source();
    src.attach_durable(Arc::clone(&durable)).unwrap();
    src.apply(Update::modify("A3", 28i64)).unwrap();
    drop(src);

    let src = Source::recover("persons", oid("ROOT"), ReportLevel::WithValues, &durable)
        .unwrap()
        .unwrap();
    let mut wh = Warehouse::new();
    wh.connect(&src);
    wh.attach_durable(Arc::clone(&durable) as Arc<dyn ChunkPort>);
    // The auxiliary cache builds against the reconstructed store, not
    // the source — still zero metered queries.
    wh.add_view_warm(
        "persons",
        yp_def(),
        ViewOptions {
            use_aux_cache: true,
            ..ViewOptions::default()
        },
    )
    .unwrap()
    .expect("warm");
    assert_eq!(wh.meter("persons").unwrap().queries(), 0);
    let before = wh.meter("persons").unwrap().queries();
    // Aux-cache-screened maintenance works post-restart.
    src.apply(Update::modify("A1", 80i64)).unwrap();
    pump(&src, &mut wh);
    assert!(wh.view(oid("YP")).unwrap().is_empty());
    assert!(wh.meter("persons").unwrap().queries() >= before);
}

/// The post-crash workload applied at the source, one commit (= one
/// published epoch) per update.
fn workload() -> Vec<Update> {
    vec![
        Update::modify("A1", 80i64),
        Update::modify("A3", 28i64),
        Update::modify("A1", 30i64),
        Update::modify("A4", 66i64),
        Update::modify("A1", 44i64),
    ]
}

/// Run setup + workload against `media`, swallowing media crashes the
/// way a live source does (persistence is behind the publish point).
/// Returns the ops consumed after setup-persist completed, if it did.
fn run_under_fire(media: &MediaSet) {
    let Ok(durable) = DurableStore::open(media.clone()) else {
        return;
    };
    let src = person_source();
    let _ = src.attach_durable(Arc::new(durable));
    for u in workload() {
        src.apply(u).unwrap();
    }
}

#[test]
fn crash_at_every_persist_op_recovers_a_published_prefix() {
    // Reference run on perfect media: capture the exact baseline store
    // (slot layout included) and epoch the oracle replays from.
    let (initial, base_epoch) = {
        let durable = Arc::new(DurableStore::open(MediaSet::memory()).unwrap());
        let src = person_source();
        let receipt = src.attach_durable(Arc::clone(&durable)).unwrap();
        let rec = durable.recover("persons").unwrap().unwrap();
        (rec.store, receipt.epoch)
    };
    let batches: Vec<Vec<Update>> = workload().into_iter().map(|u| vec![u]).collect();

    // Dry runs size the sweep: ops consumed by setup alone, then by
    // the full workload (reads never count, so the schedule is fixed).
    let seed = 7;
    let baseline_ops = {
        let ctl = ChaosController::new(ChaosPolicy::seeded(seed), CrashPlan::default());
        let durable = DurableStore::open(MediaSet::chaos(&ctl)).unwrap();
        person_source().attach_durable(Arc::new(durable)).unwrap();
        ctl.ops()
    };
    let total = {
        let ctl = ChaosController::new(ChaosPolicy::seeded(seed), CrashPlan::default());
        run_under_fire(&MediaSet::chaos(&ctl));
        assert!(!ctl.crashed());
        ctl.ops()
    };
    assert!(total > baseline_ops);

    for kill in 1..=total {
        let ctl = ChaosController::new(ChaosPolicy::seeded(seed), CrashPlan { kill_at_op: kill });
        let media = MediaSet::chaos(&ctl);
        run_under_fire(&media);
        assert!(ctl.crashed(), "kill {kill} of {total} must fire");

        // Power back on: same bytes, healthy media.
        ctl.heal(CrashPlan::default());
        let durable = Arc::new(DurableStore::open(media.clone()).unwrap());
        match durable.recover("persons").unwrap() {
            Some(rec) => {
                let verdict = check_crash_recovery(
                    &initial,
                    &batches,
                    base_epoch,
                    rec.manifest.epoch,
                    &rec.store,
                );
                assert!(
                    verdict.ok(),
                    "kill {kill}: illegal recovery: {:?}",
                    verdict.failures
                );
                // The recovered source keeps publishing durably.
                let src =
                    Source::recover("persons", oid("ROOT"), ReportLevel::WithValues, &durable)
                        .unwrap()
                        .unwrap();
                src.apply(Update::modify("A1", 99i64)).unwrap();
            }
            None => assert!(
                kill <= baseline_ops,
                "kill {kill}: baseline was durable (setup ends at op {baseline_ops}), \
                 recovery must not come up cold"
            ),
        }
    }
}
